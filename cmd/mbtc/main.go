// Command mbtc runs the model-based trace-checking pipeline of the paper's
// Figure 1: it executes a scenario (or the rollback fuzzer) on a traced
// replica set, merges the per-node trace logs, post-processes them into a
// state sequence, and checks the sequence against a RaftMongo
// specification variant.
//
// Usage:
//
//	mbtc -scenario write_3_and_replicate [-spec v2] [-list] [-workers N] [-symmetry] [-por] [-mem-budget BYTES] [-schedule MODE] [-arena] [-deadline DUR] [-progress-every DUR]
//	mbtc -fuzz [-steps 400] [-seed 7] [-sync-before-writes] [-flawed]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cliobs"
	"repro/internal/fuzzer"
	"repro/internal/mbtc"
	"repro/internal/raftmongo"
	"repro/internal/replset"
	"repro/internal/scenarios"
	"repro/internal/tla"
)

func main() {
	var (
		scenarioName = flag.String("scenario", "", "run this handwritten scenario")
		list         = flag.Bool("list", false, "list scenarios and exit")
		specVariant  = flag.String("spec", "v2", "specification variant: v1 (global term) or v2 (gossiped terms)")
		fuzz         = flag.Bool("fuzz", false, "run the rollback fuzzer instead of a scenario")
		steps        = flag.Int("steps", 400, "fuzzer steps")
		seed         = flag.Int64("seed", 7, "fuzzer seed")
		syncFirst    = flag.Bool("sync-before-writes", false, "fully sync all followers before writes (the paper's mitigation)")
		flawed       = flag.Bool("flawed", false, "enable the flawed initial-sync quorum rule and recent-only initial sync")
		workers      = flag.Int("workers", 0, "trace-checker worker goroutines (0 = GOMAXPROCS, 1 = sequential)")
		symmetry     = flag.Bool("symmetry", false, "declare node ids interchangeable on the specification (note: trace checking ignores symmetry)")
		por          = flag.Bool("por", false, "ample-set partial-order reduction (accepted for CLI uniformity; trace checking must keep every state consistent with the trace prefix)")
		memBudget    = flag.Int64("mem-budget", 0, "visited-set spill budget (accepted for CLI uniformity; trace checking keeps its frontier resident)")
		schedule     = flag.String("schedule", "levelsync", "exploration schedule: levelsync/level-sync or worksteal/work-steal (accepted for CLI uniformity; trace checking advances one observation at a time)")
		arena        = flag.Bool("arena", false, "encoded-state retention arena (accepted for CLI uniformity; trace checking retains only the live frontier)")
		deadline     = flag.Duration("deadline", 0, "wall-clock bound on the run, e.g. 90s or 10m (0 = none); over-deadline runs stop like an interrupt, with partial results")
		progEvery    = flag.Duration("progress-every", 0, "print a one-line trace-checking status (step, frontier) to stderr this often, e.g. 5s (0 = off)")
	)
	flag.Parse()

	if *list {
		for _, sc := range scenarios.All() {
			compat := ""
			if sc.TracingIncompatible {
				compat = " (tracing-incompatible)"
			}
			fmt.Printf("  %s%s\n", sc.Name, compat)
		}
		return
	}
	// First signal stops the checker cooperatively (partial result printed);
	// a second one kills the process through the default handler.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, *scenarioName, *specVariant, *fuzz, *steps, *seed, *syncFirst, *flawed, *workers, *symmetry, *por, *memBudget, *schedule, *arena, *deadline, *progEvery); err != nil {
		fmt.Fprintln(os.Stderr, "mbtc:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, scenarioName, specVariant string, fuzz bool, steps int, seed int64, syncFirst, flawed bool, workers int, symmetry, por bool, memBudget int64, schedule string, arena bool, deadline, progEvery time.Duration) error {
	topts := tla.TraceOptions{Workers: workers, Context: ctx}
	if deadline > 0 {
		topts.Deadline = time.Now().Add(deadline)
	}
	if progEvery > 0 {
		topts.Progress = cliobs.NewPrinter(os.Stderr, "mbtc", 0).ObserveTrace
		topts.ProgressEvery = progEvery
	}
	if err := topts.Validate(); err != nil {
		return err
	}
	if sched, err := tla.ParseSchedule(schedule); err != nil {
		return err
	} else if sched != tla.ScheduleLevelSync {
		// Accepted for CLI uniformity with minitlc/mbtcg: the frontier
		// method advances observation by observation, so there is no level
		// structure to reschedule.
		fmt.Fprintln(os.Stderr, "mbtc: warning: -schedule worksteal was downgraded: trace checking advances one observation at a time; -schedule applies to full exploration (minitlc, mbtcg) only")
	}
	if por {
		// Accepted for CLI uniformity with minitlc: pruning successors
		// would discard frontier states the next observation might need —
		// the frontier method must keep every state consistent with the
		// trace prefix, so there is nothing sound to defer.
		fmt.Fprintln(os.Stderr, "mbtc: note: trace checking explores only trace-consistent states; -por applies to full exploration (minitlc) only")
	}
	if arena {
		// Accepted for CLI uniformity with minitlc/mbtcg: the frontier
		// method retains only the live frontier plus its explanation spine,
		// so there is no discovered-state set to move into an arena.
		fmt.Fprintln(os.Stderr, "mbtc: note: trace checking retains only the live frontier; -arena has no effect")
	}
	if memBudget != 0 {
		// The flag is accepted for CLI uniformity with minitlc/mbtcg; the
		// frontier method holds only the states consistent with the trace
		// prefix, so there is no visited set to spill.
		fmt.Fprintln(os.Stderr, "mbtc: note: trace checking keeps its frontier in memory; -mem-budget has no effect")
	}
	var (
		cfg      replset.Config
		workload func(*replset.Cluster) error
		label    string
	)
	switch {
	case fuzz:
		fcfg := fuzzer.DefaultRollbackConfig()
		fcfg.Steps = steps
		fcfg.Seed = seed
		fcfg.SyncBeforeWrites = syncFirst
		cfg = replset.Config{
			Nodes:                   fcfg.Nodes,
			Seed:                    seed,
			RecentOnlyInitialSync:   flawed,
			FlawedInitialSyncQuorum: flawed,
		}
		workload = func(c *replset.Cluster) error {
			rep, err := fuzzer.FuzzRollback(fcfg, c)
			if err != nil {
				return err
			}
			fmt.Printf("rollback_fuzzer: %d steps, %d writes, %d elections, %d partitions, %d restarts\n",
				rep.Steps, rep.Writes, rep.Elections, rep.Partitions, rep.Restarts)
			return nil
		}
		label = "rollback_fuzzer"
	case scenarioName != "":
		for _, sc := range scenarios.All() {
			if sc.Name == scenarioName {
				cfg = replset.Config{Nodes: sc.Nodes, Arbiters: sc.Arbiters, Seed: 1}
				workload = sc.Run
				label = sc.Name
				if sc.TracingIncompatible {
					fmt.Println("warning: scenario is marked tracing-incompatible; expect a crash or violation")
				}
			}
		}
		if workload == nil {
			return fmt.Errorf("unknown scenario %q (use -list)", scenarioName)
		}
	default:
		return fmt.Errorf("need -scenario or -fuzz")
	}

	ccfg := mbtc.CheckConfig(cfg.Nodes)
	if symmetry {
		// The flag is accepted for CLI uniformity with minitlc, but the
		// frontier method cannot use it: observations name concrete nodes,
		// so symmetric-but-distinct frontier states must stay distinct.
		// Deliberately not set on ccfg — trace checking would ignore it.
		fmt.Fprintln(os.Stderr, "mbtc: note: trace checking ignores symmetry (observations name concrete nodes)")
	}
	var spec *tla.Spec[raftmongo.State]
	switch specVariant {
	case "v1":
		spec = raftmongo.SpecV1(ccfg)
	case "v2":
		spec = raftmongo.SpecV2(ccfg)
	default:
		return fmt.Errorf("unknown spec variant %q", specVariant)
	}

	rep, _, err := mbtc.PipelineOpts(cfg, workload, spec, topts)
	if err != nil {
		if rep != nil && rep.Interrupted && errors.Is(err, tla.ErrInterrupted) {
			fmt.Printf("%s against RaftMongo %s: interrupted after matching %d of %d trace events (no divergence so far)\n",
				label, specVariant, rep.Checked, rep.Events)
			return nil
		}
		return err
	}
	fmt.Printf("%s against RaftMongo %s: %d trace events, %d oplog prefix fills, max frontier %d\n",
		label, specVariant, rep.Events, rep.PrefixFills, rep.MaxFrontier)
	if rep.OK {
		fmt.Println("MBTC PASS: the trace is a behaviour of the specification")
		return nil
	}
	fmt.Printf("MBTC FAIL: trace diverges at step %d of %d (%s)\n", rep.FailedStep, rep.Events, rep.FailedEvent)
	return nil
}
