// Command mbtcg runs the model-based test-case generation pipeline of the
// paper's §5: it model-checks the array_ot specification, dumps the state
// graph to a DOT file, parses it back, derives one test case per terminal
// state (4,913 under the paper's configuration), runs the cases against
// both the reference and the independent OT implementation, and prints the
// branch-coverage table of §5.2.
//
// Usage:
//
//	mbtcg [-dot array_ot.dot] [-emit generated_test.go] [-coverage] [-workers N] [-symmetry] [-por] [-mem-budget BYTES] \
//	      [-schedule levelsync|worksteal] [-arena] [-deadline DUR] [-progress-every DUR] [-journal FILE]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/arrayot"
	"repro/internal/cliobs"
	"repro/internal/coverage"
	"repro/internal/fuzzer"
	"repro/internal/mbtcg"
	"repro/internal/ot"
	"repro/internal/otgo"
	"repro/internal/tla"
)

func main() {
	var (
		dotPath   = flag.String("dot", "array_ot.dot", "state-graph DOT output path")
		emitPath  = flag.String("emit", "", "write the generated cases as a Go test file")
		withCov   = flag.Bool("coverage", false, "print the §5.2 coverage comparison table")
		workers   = flag.Int("workers", 0, "model-checker worker goroutines (0 = GOMAXPROCS, 1 = sequential)")
		symmetry  = flag.Bool("symmetry", false, "symmetry reduction (accepted for CLI uniformity; array_ot has none)")
		por       = flag.Bool("por", false, "ample-set partial-order reduction (accepted for CLI uniformity; array_ot declares no transition independence)")
		memBudget = flag.Int64("mem-budget", 0, "approximate visited-set bytes before fingerprint shards spill to sorted runs on disk (0 = fully resident)")
		schedule  = flag.String("schedule", "levelsync", "exploration schedule: levelsync or level-sync (deterministic BFS and DOT output), worksteal or work-steal (barrier-free; same cases, nondeterministic graph order)")
		arena     = flag.Bool("arena", false, "serve the state graph from the checker's encoded-state arena instead of live values (with -mem-budget it spills to disk, so generation runs on graphs that never fit in RAM)")
		deadline  = flag.Duration("deadline", 0, "wall-clock bound on the exploration, e.g. 90s or 10m (0 = none); generation needs the complete graph, so an over-deadline run aborts with the partial-state count")
		progEvery = flag.Duration("progress-every", 0, "print a one-line exploration status to stderr this often, e.g. 5s (0 = off); works under both schedules")
		journal   = flag.String("journal", "", "append the exploration's run journal (JSONL) to this file")
	)
	flag.Parse()
	if *symmetry {
		// array_ot's clients are not interchangeable: the state-space
		// constraint orders them by ID and operation values encode the
		// originating client, so a client permutation is not a spec
		// automorphism — quotienting on it would drop generated cases.
		fmt.Fprintln(os.Stderr, "mbtcg: note: array_ot has no symmetric identities (clients act in ID order); -symmetry has no effect")
	}
	if *por {
		// Every pair of concurrent array_ot operations is transformed
		// against each other, so no two client moves commute — the spec
		// declares no independence, and generation needs every terminal
		// state anyway. The flag stays a warned no-op.
		fmt.Fprintln(os.Stderr, "mbtcg: note: array_ot declares no transition independence (concurrent operations transform against each other); -por has no effect")
	}
	// First signal stops the model checker cooperatively; generation needs
	// the complete state graph, so an interrupted exploration aborts the
	// pipeline with the partial-state count. A second signal kills normally.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, *dotPath, *emitPath, *withCov, *workers, *memBudget, *schedule, *arena, *por, *deadline, *progEvery, *journal); err != nil {
		fmt.Fprintln(os.Stderr, "mbtcg:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, dotPath, emitPath string, withCov bool, workers int, memBudget int64, schedule string, arena, por bool, deadline time.Duration, progEvery time.Duration, journal string) error {
	sched, err := tla.ParseSchedule(schedule)
	if err != nil {
		return err
	}
	opts := tla.Options{Workers: workers, MemoryBudgetBytes: memBudget, Schedule: sched, StateArena: arena, PartialOrder: por, Context: ctx}
	if deadline > 0 {
		opts.Deadline = time.Now().Add(deadline)
	}
	if progEvery > 0 {
		opts.Progress = cliobs.NewPrinter(os.Stderr, "mbtcg", memBudget).Observe
		opts.ProgressEvery = progEvery
	}
	if journal != "" {
		jf, err := os.OpenFile(journal, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("opening journal: %w", err)
		}
		defer jf.Close()
		opts.JournalWriter = jf
	}
	if err := opts.Validate(); err != nil {
		return err
	}
	if sched == tla.ScheduleWorkSteal {
		fmt.Fprintln(os.Stderr, "mbtcg: note: worksteal generates the same cases but numbers graph states nondeterministically; diff DOT output across runs only under levelsync")
	}
	cases, res, err := mbtcg.GenerateResult(arrayot.DefaultConfig(), dotPath, opts)
	if err != nil {
		return err
	}
	if sched == tla.ScheduleWorkSteal && res.Schedule != tla.ScheduleWorkSteal {
		fmt.Fprintf(os.Stderr, "mbtcg: warning: -schedule worksteal was downgraded to %s (bounded depth, memory budgets, store plugs, and checkpoint/resume are level-synchronized)\n", res.Schedule)
	}
	fmt.Printf("model checked array_ot: %d distinct states; generated %d test cases (paper: 4,913)\n",
		res.Distinct, len(cases))

	if ms := mbtcg.RunAll(cases, ot.NewTransformer(nil, false)); len(ms) != 0 {
		fmt.Printf("reference implementation FAILED %d cases; first: %s\n", len(ms), ms[0])
	} else {
		fmt.Println("reference implementation: all generated cases pass")
	}
	if ms := mbtcg.RunAll(cases, otgo.Engine{}); len(ms) != 0 {
		fmt.Printf("independent implementation FAILED %d cases; first: %s\n", len(ms), ms[0])
	} else {
		fmt.Println("independent implementation: all generated cases pass (C++/Go parity)")
	}

	if emitPath != "" {
		f, err := os.Create(emitPath)
		if err != nil {
			return err
		}
		if err := mbtcg.EmitGoTests(f, "generated", "repro/internal/ot", cases); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("generated test file written to %s\n", emitPath)
	}

	if withCov {
		handReg := coverage.NewRegistry()
		if err := mbtcg.RunWorkloads(mbtcg.HandwrittenCases(), ot.NewTransformer(handReg, false)); err != nil {
			return err
		}
		fuzzReg := coverage.NewRegistry()
		fcfg := fuzzer.DefaultTransformConfig()
		frep := fuzzer.FuzzTransform(fcfg, ot.NewTransformer(fuzzReg, false))
		genReg := coverage.NewRegistry()
		if ms := mbtcg.RunAll(cases, ot.NewTransformer(genReg, false)); len(ms) != 0 {
			return fmt.Errorf("generated cases failed during coverage run: %s", ms[0])
		}
		fmt.Println("\nbranch coverage of the array merge rules (paper: 18/86, 79/86, 86/86):")
		fmt.Printf("  %-32s %s\n", fmt.Sprintf("handwritten (%d tests)", len(mbtcg.HandwrittenCases())), handReg.Report())
		fmt.Printf("  %-32s %s\n", fmt.Sprintf("fuzz-transform (%d execs)", frep.Executions), fuzzReg.Report())
		fmt.Printf("  %-32s %s\n", fmt.Sprintf("generated (%d cases)", len(cases)), genReg.Report())
	}
	return nil
}
