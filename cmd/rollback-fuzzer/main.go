// Command rollback-fuzzer runs the randomized replica-set test of §4.1
// standalone: partitions, elections, restarts and random writes against a
// (optionally traced) replica set, writing per-node trace logs to files —
// one log file per node, as each mongod writes its own. With -check the
// captured trace is additionally merged and model-based trace-checked
// against the RaftMongo specification (the Figure 1 pipeline's checking
// half, in-process), with the same engine knobs the other CLIs take:
// -workers, -symmetry and -mem-budget.
//
// Usage:
//
//	rollback-fuzzer [-steps 8400] [-seed 7] [-nodes 3] [-out dir] [-flawed] [-sync-before-writes] \
//	                [-check] [-spec v2] [-workers N] [-symmetry] [-por] [-mem-budget BYTES] [-schedule MODE] [-arena] [-deadline DUR] [-progress-every DUR]
package main

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"repro/internal/cliobs"
	"repro/internal/fuzzer"
	"repro/internal/mbtc"
	"repro/internal/raftmongo"
	"repro/internal/replset"
	"repro/internal/tla"
	"repro/internal/trace"
)

func main() {
	var (
		steps     = flag.Int("steps", 8400, "fuzzer steps")
		seed      = flag.Int64("seed", 7, "random seed")
		nodes     = flag.Int("nodes", 3, "replica-set size")
		outDir    = flag.String("out", "", "directory for per-node trace logs (tracing off when empty, unless -check)")
		flawed    = flag.Bool("flawed", false, "flawed initial-sync quorum + recent-only initial sync")
		syncFirst = flag.Bool("sync-before-writes", false, "fully sync all followers before writes begin")
		check     = flag.Bool("check", false, "trace-check the captured run against the RaftMongo specification")
		specVar   = flag.String("spec", "v2", "specification variant for -check: v1 (global term) or v2 (gossiped terms)")
		workers   = flag.Int("workers", 0, "trace-checker worker goroutines for -check (0 = GOMAXPROCS, 1 = sequential)")
		symmetry  = flag.Bool("symmetry", false, "declare node ids interchangeable on the specification (note: trace checking ignores symmetry)")
		por       = flag.Bool("por", false, "ample-set partial-order reduction (accepted for CLI uniformity; trace checking must keep every state consistent with the trace prefix)")
		memBudget = flag.Int64("mem-budget", 0, "visited-set spill budget (accepted for CLI uniformity; trace checking keeps its frontier resident)")
		schedule  = flag.String("schedule", "levelsync", "exploration schedule: levelsync/level-sync or worksteal/work-steal (accepted for CLI uniformity; trace checking advances one observation at a time)")
		arena     = flag.Bool("arena", false, "encoded-state retention arena (accepted for CLI uniformity; trace checking retains only the live frontier)")
		deadline  = flag.Duration("deadline", 0, "wall-clock bound on the trace check, e.g. 90s or 10m (0 = none); over-deadline checks stop like an interrupt, with partial results")
		progEvery = flag.Duration("progress-every", 0, "print a one-line trace-checking status (step, frontier) to stderr this often, e.g. 5s (0 = off); applies to -check")
	)
	flag.Parse()
	// First signal stops the trace checker cooperatively (the fuzzer run
	// itself is short); a second one kills the process normally.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, *steps, *seed, *nodes, *outDir, *flawed, *syncFirst, *check, *specVar, *workers, *symmetry, *por, *memBudget, *schedule, *arena, *deadline, *progEvery); err != nil {
		fmt.Fprintln(os.Stderr, "rollback-fuzzer:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, steps int, seed int64, nodes int, outDir string, flawed, syncFirst, check bool, specVar string, workers int, symmetry, por bool, memBudget int64, schedule string, arena bool, deadline, progEvery time.Duration) error {
	topts := tla.TraceOptions{Workers: workers, Context: ctx}
	if deadline > 0 {
		topts.Deadline = time.Now().Add(deadline)
	}
	if progEvery > 0 {
		topts.Progress = cliobs.NewPrinter(os.Stderr, "rollback-fuzzer", 0).ObserveTrace
		topts.ProgressEvery = progEvery
	}
	if err := topts.Validate(); err != nil {
		return err
	}
	if sched, err := tla.ParseSchedule(schedule); err != nil {
		return err
	} else if sched != tla.ScheduleLevelSync {
		fmt.Fprintln(os.Stderr, "rollback-fuzzer: warning: -schedule worksteal was downgraded: trace checking advances one observation at a time; -schedule applies to full exploration (minitlc, mbtcg) only")
	}
	if symmetry {
		// Accepted for CLI uniformity with minitlc/mbtc/mbtcg, but the
		// frontier method cannot use it: observations name concrete nodes,
		// so symmetric-but-distinct frontier states must stay distinct.
		fmt.Fprintln(os.Stderr, "rollback-fuzzer: note: trace checking ignores symmetry (observations name concrete nodes)")
	}
	if por {
		// Accepted for CLI uniformity with minitlc: pruning successors
		// would discard frontier states the next observation might need.
		fmt.Fprintln(os.Stderr, "rollback-fuzzer: note: trace checking explores only trace-consistent states; -por applies to full exploration (minitlc) only")
	}
	if memBudget != 0 {
		fmt.Fprintln(os.Stderr, "rollback-fuzzer: note: trace checking keeps its frontier in memory; -mem-budget has no effect")
	}
	if arena {
		// Accepted for CLI uniformity with minitlc/mbtcg: the frontier
		// method retains only the live frontier plus its explanation spine.
		fmt.Fprintln(os.Stderr, "rollback-fuzzer: note: trace checking retains only the live frontier; -arena has no effect")
	}
	cfg := replset.Config{
		Nodes:                   nodes,
		Seed:                    seed,
		RecentOnlyInitialSync:   flawed,
		FlawedInitialSyncQuorum: flawed,
	}
	var (
		files []*os.File
		bufs  []*bytes.Buffer
	)
	if outDir != "" || check {
		sinks := make([]io.Writer, nodes)
		if check {
			bufs = make([]*bytes.Buffer, nodes)
			for i := range bufs {
				bufs[i] = &bytes.Buffer{}
				sinks[i] = bufs[i]
			}
		}
		if outDir != "" {
			if err := os.MkdirAll(outDir, 0o755); err != nil {
				return err
			}
			for i := 0; i < nodes; i++ {
				f, err := os.Create(filepath.Join(outDir, fmt.Sprintf("node%d.log", i)))
				if err != nil {
					return err
				}
				files = append(files, f)
				if sinks[i] != nil {
					sinks[i] = io.MultiWriter(f, sinks[i])
				} else {
					sinks[i] = f
				}
			}
		}
		cfg.TraceSinks = sinks
	}
	c, err := replset.New(cfg)
	if err != nil {
		return err
	}
	fcfg := fuzzer.RollbackConfig{
		Seed:             seed,
		Nodes:            nodes,
		Steps:            steps,
		SyncBeforeWrites: syncFirst,
		AllowRestarts:    true,
		AllowElections:   true,
	}
	rep, err := fuzzer.FuzzRollback(fcfg, c)
	for _, f := range files {
		f.Close()
	}
	if err != nil {
		return err
	}
	fmt.Printf("rollback_fuzzer: %d steps, %d writes, %d elections, %d partitions, %d restarts, %d trace events (paper run: 2,683 events)\n",
		rep.Steps, rep.Writes, rep.Elections, rep.Partitions, rep.Restarts, c.EventCount())
	if outDir != "" {
		fmt.Printf("trace logs in %s\n", outDir)
	}
	if !check {
		return nil
	}
	return checkTrace(nodes, bufs, specVar, topts)
}

// checkTrace merges the per-node logs and runs the trace checker — the
// same path mbtc -fuzz takes, minus the second fuzzer run.
func checkTrace(nodes int, bufs []*bytes.Buffer, specVar string, topts tla.TraceOptions) error {
	streams := make([][]trace.Event, nodes)
	for i, b := range bufs {
		evs, err := trace.ReadEvents(bytes.NewReader(b.Bytes()))
		if err != nil {
			return err
		}
		streams[i] = evs
	}
	merged, err := trace.Merge(streams)
	if err != nil {
		return err
	}
	ccfg := mbtc.CheckConfig(nodes)
	var spec *tla.Spec[raftmongo.State]
	switch specVar {
	case "v1":
		spec = raftmongo.SpecV1(ccfg)
	case "v2":
		spec = raftmongo.SpecV2(ccfg)
	default:
		return fmt.Errorf("unknown spec variant %q", specVar)
	}
	crep, err := mbtc.CheckEventsOpts(nodes, merged, spec, topts)
	if err != nil {
		if crep != nil && crep.Interrupted && errors.Is(err, tla.ErrInterrupted) {
			fmt.Printf("trace check against RaftMongo %s: interrupted after matching %d of %d events (no divergence so far)\n",
				specVar, crep.Checked, crep.Events)
			return nil
		}
		return err
	}
	fmt.Printf("trace check against RaftMongo %s: %d events, %d oplog prefix fills, max frontier %d\n",
		specVar, crep.Events, crep.PrefixFills, crep.MaxFrontier)
	if crep.OK {
		fmt.Println("MBTC PASS: the trace is a behaviour of the specification")
		return nil
	}
	fmt.Printf("MBTC FAIL: trace diverges at step %d of %d (%s)\n", crep.FailedStep, crep.Events, crep.FailedEvent)
	return nil
}
