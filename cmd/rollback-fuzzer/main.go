// Command rollback-fuzzer runs the randomized replica-set test of §4.1
// standalone: partitions, elections, restarts and random writes against a
// (optionally traced) replica set, writing per-node trace logs to files —
// one log file per node, as each mongod writes its own.
//
// Usage:
//
//	rollback-fuzzer [-steps 8400] [-seed 7] [-nodes 3] [-out dir] [-flawed] [-sync-before-writes]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/fuzzer"
	"repro/internal/replset"
)

func main() {
	var (
		steps     = flag.Int("steps", 8400, "fuzzer steps")
		seed      = flag.Int64("seed", 7, "random seed")
		nodes     = flag.Int("nodes", 3, "replica-set size")
		outDir    = flag.String("out", "", "directory for per-node trace logs (tracing off when empty)")
		flawed    = flag.Bool("flawed", false, "flawed initial-sync quorum + recent-only initial sync")
		syncFirst = flag.Bool("sync-before-writes", false, "fully sync all followers before writes begin")
	)
	flag.Parse()
	if err := run(*steps, *seed, *nodes, *outDir, *flawed, *syncFirst); err != nil {
		fmt.Fprintln(os.Stderr, "rollback-fuzzer:", err)
		os.Exit(1)
	}
}

func run(steps int, seed int64, nodes int, outDir string, flawed, syncFirst bool) error {
	cfg := replset.Config{
		Nodes:                   nodes,
		Seed:                    seed,
		RecentOnlyInitialSync:   flawed,
		FlawedInitialSyncQuorum: flawed,
	}
	var files []*os.File
	if outDir != "" {
		if err := os.MkdirAll(outDir, 0o755); err != nil {
			return err
		}
		sinks := make([]io.Writer, nodes)
		for i := 0; i < nodes; i++ {
			f, err := os.Create(filepath.Join(outDir, fmt.Sprintf("node%d.log", i)))
			if err != nil {
				return err
			}
			files = append(files, f)
			sinks[i] = f
		}
		cfg.TraceSinks = sinks
	}
	c, err := replset.New(cfg)
	if err != nil {
		return err
	}
	fcfg := fuzzer.RollbackConfig{
		Seed:             seed,
		Nodes:            nodes,
		Steps:            steps,
		SyncBeforeWrites: syncFirst,
		AllowRestarts:    true,
		AllowElections:   true,
	}
	rep, err := fuzzer.FuzzRollback(fcfg, c)
	for _, f := range files {
		f.Close()
	}
	if err != nil {
		return err
	}
	fmt.Printf("rollback_fuzzer: %d steps, %d writes, %d elections, %d partitions, %d restarts, %d trace events (paper run: 2,683 events)\n",
		rep.Steps, rep.Writes, rep.Elections, rep.Partitions, rep.Restarts, c.EventCount())
	if outDir != "" {
		fmt.Printf("trace logs in %s\n", outDir)
	}
	return nil
}
