// Command checkd serves model checking as a service: an HTTP/JSON API over
// the internal/checkd supervisor. Jobs name a registered spec
// (raftmongo-v1/v2, locking, arrayot) plus configuration; the supervisor
// runs them with per-job memory budgets, deadlines and periodic
// checkpoints, retries transient failures with capped backoff, caches
// verdicts, and recovers in-flight jobs from their checkpoints after a
// crash or restart.
//
// Observability: GET /metrics on the API listener serves Prometheus text
// (process checkd_* families plus per-running-job engine tla_* families),
// and -pprof-addr opts into net/http/pprof on a second listener — kept off
// the API address so profiling endpoints are never exposed by accident.
//
// Shutdown is two-signal: the first SIGTERM/SIGINT drains — admission
// stops, running jobs checkpoint and park, queued jobs stay persisted —
// and the process exits 0; a second signal force-exits immediately.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/checkd"
)

func main() {
	var (
		listen        = flag.String("listen", "127.0.0.1:8080", "address to serve the API on (host:0 picks a free port)")
		root          = flag.String("root", "checkd-data", "persistence root: job requests, checkpoints, results")
		maxConcurrent = flag.Int("max-concurrent", 2, "jobs checking at once")
		queueDepth    = flag.Int("queue-depth", 16, "bounded admission queue; beyond it submissions get 429")
		ckEvery       = flag.Int("checkpoint-every", 4, "checkpoint cadence in BFS levels (bounds work lost to kill -9)")
		maxAttempts   = flag.Int("max-attempts", 3, "attempts per job before a retryable failure becomes permanent")
		memBudget     = flag.Int64("mem-budget-per-job", 0, "default per-job memory budget in bytes (0 = resident)")
		jobDeadline   = flag.Duration("job-deadline", 0, "wall-clock cap per job run, e.g. 10m (0 = none)")
		progressEvery = flag.Duration("progress-every", time.Second, "engine progress snapshot cadence feeding job states/sec")
		pprofAddr     = flag.String("pprof-addr", "", "serve net/http/pprof on this address (empty = disabled)")
	)
	flag.Parse()

	sup, err := checkd.New(checkd.Config{
		Root:            *root,
		MaxConcurrent:   *maxConcurrent,
		QueueDepth:      *queueDepth,
		CheckpointEvery: *ckEvery,
		MaxAttempts:     *maxAttempts,
		MemBudgetPerJob: *memBudget,
		JobDeadline:     *jobDeadline,
		ProgressEvery:   *progressEvery,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "checkd:", err)
		os.Exit(2)
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, "checkd:", err)
		os.Exit(2)
	}
	srv := &http.Server{Handler: checkd.NewHandler(sup)}

	// Profiling is opt-in and on its own listener: an explicit mux (not
	// DefaultServeMux) so nothing else a library registered leaks out, and
	// a separate address so exposing the API never exposes pprof.
	if *pprofAddr != "" {
		pln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "checkd: pprof:", err)
			os.Exit(2)
		}
		pmux := http.NewServeMux()
		pmux.HandleFunc("/debug/pprof/", pprof.Index)
		pmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		fmt.Fprintf(os.Stderr, "checkd: pprof on http://%s/debug/pprof/\n", pln.Addr())
		go http.Serve(pln, pmux) //nolint:errcheck // dies with the process
	}

	// Announce the bound address on stdout — with -listen host:0 this line
	// is how scripts and the acceptance test learn the port.
	fmt.Printf("checkd listening on http://%s\n", ln.Addr())
	os.Stdout.Sync()

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-serveErr:
		fmt.Fprintln(os.Stderr, "checkd: serve:", err)
		os.Exit(2)
	case sig := <-sigs:
		fmt.Fprintf(os.Stderr, "checkd: %v: draining (again to force exit)\n", sig)
	}

	// Second signal during the drain force-exits: drain progress is bounded
	// by how fast running jobs reach their checkpoint, and the operator may
	// not want to wait. The persisted state stays resumable either way.
	done := make(chan struct{})
	go func() {
		sup.Drain()
		close(done)
	}()
	select {
	case <-done:
	case sig := <-sigs:
		fmt.Fprintf(os.Stderr, "checkd: %v: forcing exit mid-drain\n", sig)
		os.Exit(1)
	}
	srv.Close()
	// Give the listener a beat to release before exiting so an immediate
	// restart on the same port does not race the close.
	time.Sleep(10 * time.Millisecond)
	fmt.Fprintln(os.Stderr, "checkd: drained, exiting")
}
