package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/checkd"
	"repro/internal/raftmongo"
	"repro/internal/tla"
)

// checkdProc is one running checkd binary under test.
type checkdProc struct {
	cmd  *exec.Cmd
	base string // http://host:port
}

// startCheckd launches the built binary over root and parses the announced
// listen address off stdout.
func startCheckd(t *testing.T, bin, root string, extraArgs ...string) *checkdProc {
	t.Helper()
	args := append([]string{"-listen", "127.0.0.1:0", "-root", root}, extraArgs...)
	cmd := exec.Command(bin, args...)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(stdout)
	for sc.Scan() {
		line := sc.Text()
		if rest, ok := strings.CutPrefix(line, "checkd listening on "); ok {
			go func() { // keep draining stdout so the child never blocks on it
				for sc.Scan() {
				}
			}()
			return &checkdProc{cmd: cmd, base: rest}
		}
	}
	cmd.Process.Kill()
	cmd.Wait()
	t.Fatal("checkd never announced its listen address")
	return nil
}

func (p *checkdProc) doJSON(t *testing.T, method, path string, body, out any) int {
	t.Helper()
	var blob []byte
	if body != nil {
		var err error
		if blob, err = json.Marshal(body); err != nil {
			t.Fatal(err)
		}
	}
	req, err := http.NewRequest(method, p.base+path, bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, path, err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("%s %s: decoding: %v", method, path, err)
		}
	}
	return resp.StatusCode
}

// TestKillDashNineRecoversToOracleVerdict is the acceptance test for the
// service's crash-tolerance contract: SIGKILL the process mid-check,
// restart it over the same root, and the job resumes from its last
// checkpoint to a verdict and counters byte-identical to an uninterrupted
// in-process oracle run.
func TestKillDashNineRecoversToOracleVerdict(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and kills a real checkd process")
	}
	bin := filepath.Join(t.TempDir(), "checkd")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		t.Fatalf("building checkd: %v", err)
	}
	root := t.TempDir()

	// -checkpoint-every 1 maximises checkpoint cadence so the kill window
	// is wide; the contract bounds lost work to one checkpoint interval.
	proc := startCheckd(t, bin, root, "-checkpoint-every", "1", "-max-concurrent", "1")
	defer func() {
		proc.cmd.Process.Kill()
		proc.cmd.Wait()
	}()

	req := checkd.JobRequest{
		Spec:    "raftmongo-v2",
		Config:  checkd.SpecParams{Nodes: 3, MaxTerm: 3, MaxLog: 2},
		Options: checkd.JobOptions{Workers: 2},
	}
	var sub checkd.JobResult
	if code := proc.doJSON(t, "POST", "/jobs", req, &sub); code != http.StatusAccepted {
		t.Fatalf("POST /jobs = %d", code)
	}

	// Let the run make real progress — and commit at least one checkpoint —
	// then kill -9 the process.
	deadline := time.Now().Add(60 * time.Second)
	for {
		var st checkd.JobStatus
		if code := proc.doJSON(t, "GET", "/jobs/"+sub.ID, nil, &st); code != http.StatusOK {
			t.Fatalf("GET status = %d", code)
		}
		if st.State == checkd.JobDone {
			t.Fatal("job finished before the kill; raise the state space or lower the threshold")
		}
		manifest := filepath.Join(root, sub.ID, "ck", "MANIFEST.json")
		if _, err := os.Stat(manifest); err == nil &&
			st.Progress != nil && st.Progress.Distinct >= 15000 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no checkpointed progress to kill into (last: %+v)", st.Progress)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err := proc.cmd.Process.Kill(); err != nil { // SIGKILL: no drain, no goodbye
		t.Fatal(err)
	}
	proc.cmd.Wait()

	// Restart over the same root: the startup scan must re-queue the job
	// and resume it from the manifest to completion.
	proc2 := startCheckd(t, bin, root, "-checkpoint-every", "4", "-max-concurrent", "1")
	defer func() {
		proc2.cmd.Process.Kill()
		proc2.cmd.Wait()
	}()
	var final checkd.JobResult
	for {
		if code := proc2.doJSON(t, "GET", "/jobs/"+sub.ID+"/result", nil, &final); code != http.StatusOK {
			t.Fatalf("GET result after restart = %d", code)
		}
		if final.State == checkd.JobDone {
			break
		}
		if final.State == checkd.JobFailed || final.State == checkd.JobCanceled {
			t.Fatalf("recovered job ended %q: %s", final.State, final.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("recovered job stuck in %q", final.State)
		}
		time.Sleep(50 * time.Millisecond)
	}

	// The oracle: the same spec checked uninterrupted, in process, with
	// checkpoint-shaped options (same visited-store selection) at Workers=1.
	oracle, err := checkd.RunSpec(
		raftmongo.SpecV2(raftmongo.Config{Nodes: 3, MaxTerm: 3, MaxLogLen: 2}),
		tla.Options{Workers: 1, StateArena: true, CheckpointDir: t.TempDir(), CheckpointEvery: 8})
	if err != nil {
		t.Fatalf("oracle: %v", err)
	}
	got, want := final.Outcome, oracle
	if got.Verdict != want.Verdict || got.Distinct != want.Distinct ||
		got.Transitions != want.Transitions || got.Depth != want.Depth || got.Terminal != want.Terminal {
		t.Fatalf("resumed verdict diverged from oracle:\n got  %+v\n want %+v", got, want)
	}

	// Graceful exit: SIGTERM drains and the process exits 0.
	if err := proc2.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := proc2.cmd.Wait(); err != nil {
		t.Fatalf("drained process exit: %v", err)
	}
}

// TestDrainParksRunningJobAcrossRestart: SIGTERM mid-run checkpoints the
// job and exits 0; the restarted process resumes it to completion.
func TestDrainParksRunningJobAcrossRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and signals a real checkd process")
	}
	bin := filepath.Join(t.TempDir(), "checkd")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		t.Fatalf("building checkd: %v", err)
	}
	root := t.TempDir()
	proc := startCheckd(t, bin, root, "-checkpoint-every", "1")
	defer func() {
		proc.cmd.Process.Kill()
		proc.cmd.Wait()
	}()

	req := checkd.JobRequest{
		Spec:    "raftmongo-v2",
		Config:  checkd.SpecParams{Nodes: 3, MaxTerm: 3, MaxLog: 2},
		Options: checkd.JobOptions{Workers: 2},
	}
	var sub checkd.JobResult
	if code := proc.doJSON(t, "POST", "/jobs", req, &sub); code != http.StatusAccepted {
		t.Fatalf("POST /jobs = %d", code)
	}
	deadline := time.Now().Add(60 * time.Second)
	for {
		var st checkd.JobStatus
		proc.doJSON(t, "GET", "/jobs/"+sub.ID, nil, &st)
		if st.State == checkd.JobDone {
			t.Fatal("job finished before the drain")
		}
		if st.Progress != nil && st.Progress.Distinct >= 5000 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no progress to drain into")
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err := proc.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := proc.cmd.Wait(); err != nil {
		t.Fatalf("drain exit: %v", err)
	}
	if _, err := os.Stat(filepath.Join(root, sub.ID, "ck", "MANIFEST.json")); err != nil {
		t.Fatalf("drain left no checkpoint: %v", err)
	}
	if _, err := os.Stat(filepath.Join(root, sub.ID, "result.json")); err == nil {
		t.Fatal("drained job has a terminal result; it should be parked")
	}

	proc2 := startCheckd(t, bin, root)
	defer func() {
		proc2.cmd.Process.Signal(syscall.SIGTERM)
		proc2.cmd.Wait()
	}()
	for {
		var final checkd.JobResult
		if code := proc2.doJSON(t, "GET", "/jobs/"+sub.ID+"/result", nil, &final); code != http.StatusOK {
			t.Fatalf("GET result = %d", code)
		}
		if final.State == checkd.JobDone {
			if final.Outcome == nil || final.Outcome.Verdict != "ok" {
				t.Fatalf("resumed outcome = %+v", final.Outcome)
			}
			break
		}
		if final.State.Terminal() {
			t.Fatalf("resumed job ended %q: %s", final.State, final.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("resumed job stuck in %q", final.State)
		}
		time.Sleep(50 * time.Millisecond)
	}
	fmt.Println("drain/restart cycle complete")
}
